"""Push–pull anti-entropy gossip for load dissemination.

Section IV: "The loads can be disseminated by a gossiping algorithm.  As
gossiping algorithms have logarithmic convergence time, if the gossiping is
executed about O(log m) times more frequently than our algorithm, each
server has accurate information about the loads."

Every node keeps, for each server, the freshest ``(version, value)`` pair
it has heard of.  In one round every node contacts ``fanout`` random peers
and the two merge their tables entry-wise by version.  Rumor-spreading
theory gives full dissemination in ``O(log m)`` rounds w.h.p.; the tests
check that empirically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GossipNetwork"]


class GossipNetwork:
    """A population of nodes gossiping a per-server value vector.

    The node ``i`` is authoritative for entry ``i``: calling
    :meth:`publish` bumps its version.  :meth:`view` returns a node's
    current (possibly stale) view of all values, suitable as the
    ``load_view`` hook of :class:`repro.core.distributed.MinEOptimizer`.
    """

    def __init__(
        self,
        m: int,
        *,
        fanout: int = 1,
        rng: np.random.Generator | int | None = None,
    ):
        if m < 1:
            raise ValueError("need at least one node")
        self.m = m
        self.fanout = fanout
        self.rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        # values[i, k] = node i's view of server k's value
        self.values = np.zeros((m, m))
        # versions[i, k] = version of that view
        self.versions = np.full((m, m), -1, dtype=np.int64)
        self.clock = 0

    # ------------------------------------------------------------------
    def publish(self, i: int, value: float) -> None:
        """Node ``i`` publishes a new authoritative value for entry ``i``."""
        self.clock += 1
        self.values[i, i] = value
        self.versions[i, i] = self.clock

    def publish_all(self, values: np.ndarray) -> None:
        """Every node publishes its own current value (one bulk update)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.m,):
            raise ValueError(f"expected ({self.m},) values")
        self.clock += 1
        idx = np.arange(self.m)
        self.values[idx, idx] = values
        self.versions[idx, idx] = self.clock

    def view(self, i: int) -> np.ndarray:
        """Node ``i``'s current view of all per-server values."""
        return self.values[i].copy()

    def view_versions(self, i: int) -> np.ndarray:
        """Per-entry versions behind node ``i``'s view.

        Entry ``k`` is the global publish-clock value at which the version
        node ``i`` currently holds of server ``k`` was published; ``-1``
        marks an entry never heard of.  Staleness metrics (e.g. the
        :mod:`repro.livesim` view-age statistics) compare these against
        the authoritative diagonal versions.
        """
        return self.versions[i].copy()

    def view_ages(self, i: int) -> np.ndarray:
        """Per-entry *age* of node ``i``'s view, in publish-clock ticks.

        Age is ``clock − version`` — how many publishes ago the entry
        node ``i`` holds was produced.  Ages grow monotonically between
        publishes of an entry and reset to 0 on the authoritative node
        the moment it republishes.  Entries never heard of have infinite
        age.
        """
        versions = self.versions[i]
        ages = np.where(
            versions >= 0, float(self.clock) - versions, np.inf
        )
        return ages

    # ------------------------------------------------------------------
    def _merge(self, a: int, b: int) -> None:
        newer = self.versions[b] > self.versions[a]
        self.values[a, newer] = self.values[b, newer]
        self.versions[a, newer] = self.versions[b, newer]
        older = self.versions[a] > self.versions[b]
        self.values[b, older] = self.values[a, older]
        self.versions[b, older] = self.versions[a, older]

    def round(self) -> None:
        """One push–pull round: every node exchanges with random peers."""
        for i in range(self.m):
            for _ in range(self.fanout):
                j = int(self.rng.integers(0, self.m))
                if j != i:
                    self._merge(i, j)

    def rounds_to_convergence(self, max_rounds: int = 1000) -> int:
        """Gossip until every node knows the latest version of every entry;
        returns the number of rounds used."""
        for r in range(max_rounds):
            if self.fully_converged():
                return r
            self.round()
        return max_rounds

    def fully_converged(self) -> bool:
        latest = np.diagonal(self.versions)
        return bool(np.all(self.versions == latest[None, :]))

    def staleness(self) -> float:
        """Fraction of (node, entry) views that are out of date."""
        latest = np.diagonal(self.versions)
        stale = self.versions != latest[None, :]
        return float(stale.mean())
