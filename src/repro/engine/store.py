"""Append-only JSONL result store — crash-safe, resumable sweeps.

Each finished cell is written as one JSON line ``{"key": ..., "result":
...}`` and flushed immediately, so a killed sweep loses at most the cell
in flight.  On the next run the engine loads the store, skips every key
already present and only executes the remainder.  Re-writing a key is
allowed (last write wins), which also makes merging partial sweeps a
plain file concatenation.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator, Union

__all__ = ["JsonlStore"]

PathLike = Union[str, os.PathLike]


class JsonlStore:
    """A ``{key: json-payload}`` mapping persisted as JSON lines."""

    def __init__(self, path: "PathLike | None"):
        self.path = os.fspath(path) if path is not None else None
        self._cache: dict[str, Any] = {}
        self._loaded = False

    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, *paths: PathLike, out: "PathLike | None" = None) -> "JsonlStore":
        """Union of several stores — the coordinator half of sharded
        sweeps (each shard appends to its own file; merging is plain
        concatenation, later paths winning duplicate keys).

        With ``out`` the concatenated lines are also written to that
        path and the returned store is backed by it (appendable);
        without, the union lives in memory only (reads work, ``append``
        raises).  Missing input paths are skipped, so a coordinator can
        merge an expected shard layout before every shard has started.
        """
        merged: dict[str, Any] = {}
        for p in paths:
            shard = cls(p)
            merged.update(shard.load())
        if out is not None:
            store = cls(out)
            os.makedirs(os.path.dirname(os.path.abspath(store.path)), exist_ok=True)
            with open(store.path, "w", encoding="utf-8") as fh:
                for key, result in merged.items():
                    fh.write(json.dumps({"key": key, "result": result}) + "\n")
        else:
            store = cls(None)
        store._cache = merged
        store._loaded = True
        return store

    # ------------------------------------------------------------------
    def load(self) -> dict[str, Any]:
        """Read the file into the in-memory view (tolerating a torn final
        line from a crashed writer) and return it."""
        self._cache = {}
        if self.path is not None and os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail of a crashed run
                    self._cache[rec["key"]] = rec["result"]
        self._loaded = True
        return dict(self._cache)

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    # ------------------------------------------------------------------
    def append(self, key: str, result: Any) -> None:
        """Persist one result now (written and flushed before returning)."""
        if self.path is None:
            raise ValueError(
                "this store is an in-memory merge result; pass out= to "
                "JsonlStore.merge to get an appendable store"
            )
        self._ensure_loaded()
        os.makedirs(os.path.dirname(os.path.abspath(self.path)), exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"key": key, "result": result}) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._cache[key] = result

    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        self._ensure_loaded()
        return self._cache.get(key, default)

    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._cache

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._cache)

    def keys(self) -> Iterator[str]:
        self._ensure_loaded()
        return iter(dict(self._cache))

    def __repr__(self) -> str:
        self._ensure_loaded()
        return f"JsonlStore({self.path!r}, {len(self._cache)} results)"
