"""Append-only JSONL result store — crash-safe, resumable sweeps.

Each finished cell is written as one JSON line ``{"key": ..., "result":
...}`` and flushed immediately, so a killed sweep loses at most the cell
in flight.  On the next run the engine loads the store, skips every key
already present and only executes the remainder.  Re-writing a key is
allowed (last write wins), which also makes merging partial sweeps a
plain file concatenation.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator, Union

__all__ = ["JsonlStore"]

PathLike = Union[str, os.PathLike]


class JsonlStore:
    """A ``{key: json-payload}`` mapping persisted as JSON lines."""

    def __init__(self, path: PathLike):
        self.path = os.fspath(path)
        self._cache: dict[str, Any] = {}
        self._loaded = False

    # ------------------------------------------------------------------
    def load(self) -> dict[str, Any]:
        """Read the file into the in-memory view (tolerating a torn final
        line from a crashed writer) and return it."""
        self._cache = {}
        if os.path.exists(self.path):
            with open(self.path, "r", encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail of a crashed run
                    self._cache[rec["key"]] = rec["result"]
        self._loaded = True
        return dict(self._cache)

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    # ------------------------------------------------------------------
    def append(self, key: str, result: Any) -> None:
        """Persist one result now (written and flushed before returning)."""
        self._ensure_loaded()
        os.makedirs(os.path.dirname(os.path.abspath(self.path)), exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"key": key, "result": result}) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._cache[key] = result

    # ------------------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        self._ensure_loaded()
        return self._cache.get(key, default)

    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._cache

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._cache)

    def keys(self) -> Iterator[str]:
        self._ensure_loaded()
        return iter(dict(self._cache))

    def __repr__(self) -> str:
        self._ensure_loaded()
        return f"JsonlStore({self.path!r}, {len(self._cache)} results)"
