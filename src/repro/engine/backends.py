"""Execution backends for sweep cells.

A backend runs ``fn`` over a sequence of independent cells and yields
``(index, result)`` pairs in cell order.  Four are provided:

``serial``
    Plain in-process loop.  Zero overhead, always available, and the
    reference the parallel backends are tested against.

``process``
    ``concurrent.futures.ProcessPoolExecutor``, one task per cell (or
    per ``chunk_size`` cells when given).  Cells
    are embarrassingly parallel and dominated by the O(m²)–O(m³) optimum
    solve, so this scales nearly linearly with cores for medium/large
    cells.  ``fn`` and the cells must be picklable (module-level
    functions; no lambdas or closures).

``chunked``
    The process pool with cells batched into chunks (``chunksize`` of
    ``Executor.map``), amortizing pickling/IPC overhead when a sweep has
    many small cells.

``threads``
    ``concurrent.futures.ThreadPoolExecutor``.  The numpy kernels under
    every solver release the GIL, so threads overlap the array work while
    skipping the fork and pickling cost entirely — the right backend for
    many-tiny-cell sweeps where ``process`` spends more time shipping
    cells than solving them (the ``chunked`` backend only amortizes that
    cost; threads remove it).  No picklability requirement on ``fn`` or
    the cells.

Determinism: a backend only changes *where* a cell runs, never its
inputs.  As long as ``fn`` derives all randomness from the cell spec
itself (as every sweep in this repo does — seeds travel inside the cell),
all backends produce bitwise-identical results.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Callable, Iterator, Sequence, TypeVar

__all__ = ["BACKENDS", "resolve_workers", "run_cells"]

BACKENDS = ("serial", "threads", "process", "chunked")

C = TypeVar("C")
R = TypeVar("R")


def resolve_workers(max_workers: int | None, n_cells: int) -> int:
    """Worker count for the process backends: the explicit request, else
    every available core, never more than one per cell."""
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    return max(1, min(int(max_workers), n_cells))


def _run_chunk(fn: Callable[[C], R], chunk: list[C]) -> list[R]:
    """Worker-side helper of the chunked backend (module-level so it
    pickles)."""
    return [fn(cell) for cell in chunk]


def run_cells(
    fn: Callable[[C], R],
    cells: Sequence[C],
    *,
    backend: str = "serial",
    max_workers: int | None = None,
    chunk_size: int | None = None,
    ordered: bool = True,
) -> Iterator[tuple[int, R]]:
    """Yield ``(index, fn(cell))`` pairs via the chosen backend.

    ``ordered=True`` yields in cell order (each result as soon as every
    earlier one is out).  ``ordered=False`` yields in *completion* order
    on the parallel backends — what a crash-safe result store wants: a
    finished cell can be persisted immediately even while an earlier,
    slower cell is still running.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    cells = list(cells)
    if backend == "serial" or len(cells) <= 1:
        for idx, cell in enumerate(cells):
            yield idx, fn(cell)
        return

    workers = resolve_workers(max_workers, len(cells))
    if workers == 1:
        for idx, cell in enumerate(cells):
            yield idx, fn(cell)
        return

    if chunk_size is not None:
        chunksize = max(1, int(chunk_size))  # honored on both pool backends
    elif backend == "chunked":
        chunksize = max(1, len(cells) // (4 * workers))
    else:
        chunksize = 1
    chunks = [
        list(range(lo, min(lo + chunksize, len(cells))))
        for lo in range(0, len(cells), chunksize)
    ]
    executor = ThreadPoolExecutor if backend == "threads" else ProcessPoolExecutor
    with executor(max_workers=workers) as pool:
        futures = {
            pool.submit(_run_chunk, fn, [cells[i] for i in idxs]): idxs
            for idxs in chunks
        }
        if ordered:
            for future, idxs in futures.items():  # submission == cell order
                for i, result in zip(idxs, future.result()):
                    yield i, result
        else:
            for future in as_completed(futures):
                for i, result in zip(futures[future], future.result()):
                    yield i, result
