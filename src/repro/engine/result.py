"""The common return type of every registered solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.state import AllocationState

__all__ = ["SolveResult"]


@dataclass
class SolveResult:
    """What every solver in the registry returns.

    The allocation itself plus the bookkeeping that every consumer of a
    sweep wants: the objective value, how long the solve took, how many
    iterations/rounds it ran (0 for closed-form policies) and whether its
    own stop criterion was met.  ``metadata`` carries solver-specific
    extras (strategy used, stall reason, trace lengths, …) without
    widening the common interface.
    """

    solver: str
    state: AllocationState
    total_cost: float
    wall_time_s: float
    iterations: int = 0
    converged: bool = True
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def inst(self):
        """The instance the allocation lives on."""
        return self.state.inst

    def relative_error(self, optimum: float) -> float:
        """``(ΣCi − ΣCi*) / ΣCi*`` against a reference optimum (clamped
        at 0 — solvers may land a hair under a numerically-approximate
        reference)."""
        denom = optimum if optimum > 0 else 1.0
        return max(0.0, (self.total_cost - optimum) / denom)

    def summary(self) -> dict[str, Any]:
        """JSON-friendly scalar view (the allocation matrix is dropped)."""
        return {
            "solver": self.solver,
            "total_cost": self.total_cost,
            "wall_time_s": self.wall_time_s,
            "iterations": self.iterations,
            "converged": self.converged,
            "m": self.state.inst.m,
            **self.metadata,
        }

    def __repr__(self) -> str:
        return (
            f"SolveResult({self.solver!r}, cost={self.total_cost:.6g}, "
            f"iters={self.iterations}, {self.wall_time_s * 1e3:.2f} ms)"
        )
