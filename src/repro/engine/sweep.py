"""The sweep engine: cells × cell function × backend × store.

:class:`SweepEngine` is the one sweep loop in the repo.  Give it a list
of picklable cells and a module-level function evaluating one cell; it
returns the results in cell order, optionally

* in parallel (``backend="process"`` / ``"chunked"``, see
  :mod:`repro.engine.backends`),
* resumably (``store=JsonlStore(path)`` — finished cells are persisted
  as they complete and skipped on re-runs),
* streamed (``progress`` is called with each result, in cell order, as
  soon as it is available).

The engine never injects randomness: every cell must carry its own seed
(all sweeps in this repo derive their RNGs from the cell spec), which is
what makes serial and parallel execution bitwise-identical.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Generic, Sequence, TypeVar

from .backends import BACKENDS, run_cells
from .store import JsonlStore

__all__ = ["SweepEngine", "parse_shard"]

C = TypeVar("C")
R = TypeVar("R")


def parse_shard(spec: "str | tuple[int, int] | None") -> "tuple[int, int] | None":
    """Normalize a shard spec — ``"k/N"`` (1-based) or ``(k, N)`` — to a
    validated ``(k, N)`` tuple (``None`` passes through)."""
    if spec is None:
        return None
    if isinstance(spec, str):
        try:
            k_s, n_s = spec.split("/", 1)
            k, n = int(k_s), int(n_s)
        except ValueError:
            raise ValueError(
                f"shard spec must look like 'k/N' (e.g. '2/4'), got {spec!r}"
            ) from None
    else:
        k, n = spec
    if n < 1 or not 1 <= k <= n:
        raise ValueError(f"shard index must satisfy 1 <= k <= N, got {k}/{n}")
    return (k, n)


class SweepEngine(Generic[C, R]):
    """Run ``fn`` over ``cells`` through a pluggable execution backend.

    Parameters
    ----------
    fn:
        Module-level callable evaluating one cell.  For the process
        backends it must be picklable, as must the cells and results.
    cells:
        The sweep grid, in the order results should be returned.
    backend, max_workers, chunk_size:
        Execution backend selection (``"serial"``, ``"process"``,
        ``"chunked"``) and its sizing.
    store:
        Optional :class:`JsonlStore` (or path) making the sweep
        resumable: cells whose key is already stored are not re-run, and
        every fresh result is appended as soon as it completes.
    key:
        ``cell -> str`` identity for the store; defaults to ``repr``.
        Must be stable across runs (reprs of dataclasses/primitives are).
    encode / decode:
        ``result -> jsonable`` and back, for the store.  Defaults to the
        identity, which suffices for dict/scalar results.
    shard:
        ``"k/N"`` (1-based) or ``(k, N)``: this engine executes only
        every N-th *pending* cell starting at the k-th — the unit of the
        sharded-sweep workflow (N machines share one grid, each writing
        its own store; :meth:`JsonlStore.merge` stitches the results).
        Cells already in the store are still returned; pending cells of
        other shards come back as ``None``.
    """

    def __init__(
        self,
        fn: Callable[[C], R],
        cells: Sequence[C],
        *,
        backend: str = "serial",
        max_workers: int | None = None,
        chunk_size: int | None = None,
        store: "JsonlStore | str | os.PathLike | None" = None,
        key: Callable[[C], str] | None = None,
        encode: Callable[[R], Any] | None = None,
        decode: Callable[[Any], R] | None = None,
        shard: "str | tuple[int, int] | None" = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        self.fn = fn
        self.cells = list(cells)
        self.backend = backend
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.store = (
            JsonlStore(store) if isinstance(store, (str, os.PathLike)) else store
        )
        self.key = key if key is not None else repr
        self.encode = encode if encode is not None else (lambda r: r)
        self.decode = decode if decode is not None else (lambda p: p)
        self.shard = parse_shard(shard)

    # ------------------------------------------------------------------
    def pending(self) -> list[tuple[int, C]]:
        """``(index, cell)`` pairs not yet present in the store."""
        if self.store is None:
            return list(enumerate(self.cells))
        return [
            (i, c) for i, c in enumerate(self.cells) if self.key(c) not in self.store
        ]

    def run(self, *, progress: Callable[[R], None] | None = None) -> list[R]:
        """Execute every (pending) cell; return all results in cell order.

        ``progress`` is invoked once per result in cell order — for
        stored cells immediately, for fresh ones as they complete.
        """
        results: list[R] = [None] * len(self.cells)  # type: ignore[list-item]
        done = [False] * len(self.cells)

        if self.store is not None:
            for i, cell in enumerate(self.cells):
                payload = self.store.get(self.key(cell), _MISSING)
                if payload is not _MISSING:
                    results[i] = self.decode(payload)
                    done[i] = True

        pending = [(i, c) for i, c in enumerate(self.cells) if not done[i]]
        if self.shard is not None:
            # Every N-th pending cell, counted over the *pending* list so
            # shards stay balanced as a shared store fills up.
            k, n = self.shard
            pending = pending[k - 1 :: n]
            # Out-of-shard pending cells will never complete here; mark
            # them emitted-as-None so progress streaming can pass them.
            in_shard = {i for i, _ in pending}
            for i in range(len(done)):
                if not done[i] and i not in in_shard:
                    done[i] = True

        # Emit the already-stored prefix (in order) before fresh work.
        emitted = 0

        def _drain():
            nonlocal emitted
            while emitted < len(done) and done[emitted]:
                if progress is not None:
                    progress(results[emitted])
                emitted += 1

        _drain()
        # Completion order (ordered=False): a finished cell is persisted
        # to the store immediately, even while an earlier, slower cell is
        # still running — a crash loses only cells actually in flight.
        # ``progress`` still fires in cell order via the drain above.
        for pending_idx, result in run_cells(
            self.fn,
            [c for _, c in pending],
            backend=self.backend,
            max_workers=self.max_workers,
            chunk_size=self.chunk_size,
            ordered=False,
        ):
            idx = pending[pending_idx][0]
            results[idx] = result
            done[idx] = True
            if self.store is not None:
                self.store.append(self.key(self.cells[idx]), self.encode(result))
            _drain()
        return results


_MISSING = object()
