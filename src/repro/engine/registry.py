"""Named solver registry — one calling convention for every algorithm.

Every algorithm in the repo (the centralized optimum solvers, the three
MinE partner strategies, the four baselines, the selfish best-response
dynamics) is registered under a stable name and called the same way::

    result = get_solver("mine-exact").solve(inst, rng=0, optimum=opt_cost)

returning a :class:`~repro.engine.result.SolveResult` with the
allocation, the objective, the wall time and solver metadata.  New
algorithms plug in with the :func:`register_solver` decorator::

    @register_solver("my-heuristic", kind="baseline")
    def _my_heuristic(inst, *, rng=None, optimum=None, **options):
        return some_allocation_state          # or (state, extras_dict)

A parallel, much smaller *evaluator* registry covers metrics computed on
top of an allocation rather than producing one — e.g. the discrete-event
stream simulation (``"stream"``) and the snapshot validation
(``"snapshot"``).  Evaluators take ``(inst, state)`` and return a flat
``dict`` of scalars.

A third registry covers *stateful* solvers — algorithms that track a
non-stationary workload by carrying their allocation from one demand
epoch to the next instead of solving each epoch from scratch.  A
registered entry is a session *factory*: calling it yields a fresh
:class:`StatefulSolver` whose ``start(inst)`` initializes on the first
epoch and whose ``step(inst)`` re-solves after a demand shift (both
return ordinary :class:`SolveResult` rows, so load-trace sweeps run
through :class:`~repro.engine.sweep.SweepEngine` and
:class:`~repro.engine.store.JsonlStore` unchanged).  The built-in
sessions (warm-start incremental MinE and the cold-restart baseline)
register themselves from :mod:`repro.tracking.solvers`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from .. import obs as _obs
from ..core import baselines as _baselines
from ..core.distributed import MinEOptimizer
from ..core.game import best_response_dynamics
from ..core.instance import Instance
from ..core.qp import solve_optimal
from ..core.state import AllocationState
from ..sim.runner import simulate_snapshot, simulate_stream
from .result import SolveResult

__all__ = [
    "Solver",
    "FunctionSolver",
    "register_solver",
    "get_solver",
    "list_solvers",
    "register_evaluator",
    "get_evaluator",
    "list_evaluators",
    "StatefulSolver",
    "StatefulSolverEntry",
    "register_stateful_solver",
    "get_stateful_solver",
    "list_stateful_solvers",
]

@runtime_checkable
class Solver(Protocol):
    """Anything with a name that can solve an instance."""

    name: str

    def solve(
        self,
        inst: Instance,
        *,
        rng: np.random.Generator | int | None = None,
        optimum: float | None = None,
        **options,
    ) -> SolveResult: ...


#: Raw solver functions return the allocation, optionally with an extras
#: dict whose ``iterations`` / ``converged`` keys are lifted into the
#: :class:`SolveResult`; everything else lands in ``metadata``.
SolverFn = Callable[..., "AllocationState | tuple[AllocationState, dict]"]


@dataclass(frozen=True)
class FunctionSolver:
    """A registered solver: a raw function plus its registry identity.

    :meth:`solve` measures wall time around the raw call and normalizes
    the return value into a :class:`SolveResult`.
    """

    name: str
    fn: SolverFn = field(compare=False)
    kind: str = "solver"  #: "optimal" | "distributed" | "baseline" | "equilibrium"
    description: str = field(default="", compare=False)

    def solve(
        self,
        inst: Instance,
        *,
        rng: np.random.Generator | int | None = None,
        optimum: float | None = None,
        **options,
    ) -> SolveResult:
        t0 = time.perf_counter()
        out = self.fn(inst, rng=rng, optimum=optimum, **options)
        wall = time.perf_counter() - t0
        ctx = _obs.get_active()
        if ctx is not None:
            ctx.metrics.counter(f"engine.solve.{self.name}").inc()
            ctx.metrics.histogram("engine.solve_wall_s").observe(wall)
        extras: dict[str, Any] = {}
        if isinstance(out, tuple):
            state, extras = out
            extras = dict(extras)
        else:
            state = out
        # Solvers that already computed ΣCi hand it over via extras
        # instead of paying the O(m²) reduction a second time.
        total_cost = extras.pop("total_cost", None)
        return SolveResult(
            solver=self.name,
            state=state,
            total_cost=state.total_cost() if total_cost is None else total_cost,
            wall_time_s=wall,
            iterations=int(extras.pop("iterations", 0)),
            converged=bool(extras.pop("converged", True)),
            metadata=extras,
        )

    def __call__(self, inst: Instance, **kw) -> SolveResult:
        return self.solve(inst, **kw)


_SOLVERS: dict[str, FunctionSolver] = {}


def _registry_add(
    registry: dict, kind_label: str, name: str, entry, overwrite: bool
) -> None:
    """Shared duplicate guard of all three registries in this module."""
    if not overwrite and name in registry:
        raise ValueError(
            f"{kind_label} {name!r} is already registered "
            "(pass overwrite=True to replace it)"
        )
    registry[name] = entry


def _registry_get(registry: dict, kind_label: str, name: str):
    """Shared lookup (unknown names list what *is* registered)."""
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown {kind_label} {name!r}; registered: {known}") from None


def register_solver(
    name: str,
    fn: SolverFn | None = None,
    *,
    kind: str = "solver",
    description: str = "",
    overwrite: bool = False,
) -> Callable[[SolverFn], FunctionSolver] | FunctionSolver:
    """Register ``fn`` under ``name``; usable directly or as a decorator."""

    def _register(f: SolverFn) -> FunctionSolver:
        solver = FunctionSolver(name=name, fn=f, kind=kind, description=description)
        _registry_add(_SOLVERS, "solver", name, solver, overwrite)
        return solver

    return _register if fn is None else _register(fn)


def get_solver(name: str) -> FunctionSolver:
    """Look up a registered solver by name."""
    return _registry_get(_SOLVERS, "solver", name)


def list_solvers(kind: str | None = None) -> dict[str, str]:
    """``{name: description}`` of registered solvers, optionally by kind."""
    return {
        n: s.description
        for n, s in sorted(_SOLVERS.items())
        if kind is None or s.kind == kind
    }


# ----------------------------------------------------------------------
# Built-in solvers
# ----------------------------------------------------------------------
def _as_optimum_cost(optimum) -> float | None:
    if optimum is None:
        return None
    if isinstance(optimum, AllocationState):
        return optimum.total_cost()
    return float(optimum)


@register_solver(
    "optimal",
    kind="optimal",
    description="Cooperative optimum (coordinate descent / FISTA / scipy QP)",
)
def _solve_optimal(inst, *, rng=None, optimum=None, method="auto", tol=1e-12):
    state = solve_optimal(inst, method=method, tol=tol)
    return state, {"method": method, "tol": tol}


def _make_mine(strategy):
    def _solve(
        inst,
        *,
        rng=None,
        optimum=None,
        max_iterations=100,
        rel_tol=None,
        snapshot_partner_selection=False,
        **options,
    ):
        state = AllocationState.initial(inst)
        optimizer = MinEOptimizer(
            state,
            rng=rng,
            strategy=strategy,
            snapshot_partner_selection=snapshot_partner_selection,
            **options,
        )
        trace = optimizer.run(
            max_iterations=max_iterations,
            optimum=_as_optimum_cost(optimum),
            rel_tol=rel_tol,
        )
        return state, {
            "iterations": trace.iterations,
            "converged": trace.converged,
            "strategy": strategy,
            "initial_cost": trace.costs[0],
            "total_cost": trace.costs[-1],  # final ΣCi, already computed
        }

    return _solve


for _strategy in ("exact", "screened", "auto"):
    register_solver(
        f"mine-{_strategy}",
        _make_mine(_strategy),
        kind="distributed",
        description=f"Distributed MinE (Algorithms 1+2), {_strategy} partner choice",
    )
del _strategy


@register_solver(
    "best-response",
    kind="equilibrium",
    description="Selfish best-response dynamics to an approximate Nash equilibrium",
)
def _solve_best_response(
    inst, *, rng=None, optimum=None, max_rounds=500, tol_change=0.01, **options
):
    ne, trace = best_response_dynamics(
        inst, rng=rng, max_rounds=max_rounds, tol_change=tol_change, **options
    )
    c_ne = ne.total_cost()
    extras = {
        "iterations": trace.rounds,
        "converged": trace.converged,
        "total_cost": c_ne,
    }
    opt_cost = _as_optimum_cost(optimum)
    if opt_cost is not None:
        # Degenerate zero-cost optimum → ratio 1, matching price_of_anarchy.
        extras["poa_ratio"] = c_ne / opt_cost if opt_cost > 0 else 1.0
    return ne, extras


def _make_baseline(fn):
    def _solve(inst, *, rng=None, optimum=None, **options):
        return fn(inst, **options), {"family": "baseline"}

    return _solve


for _name, _fn, _desc in (
    ("round-robin", _baselines.round_robin, "Spread requests equally over all servers"),
    ("nearest-server", _baselines.nearest_server, "Latency-greedy, congestion-blind"),
    ("proportional-speed", _baselines.proportional_speed,
     "Congestion-only l_j/s_j equalization, latency-blind"),
    ("makespan-greedy", _baselines.makespan_greedy,
     "Greedy list scheduling for the Cmax objective"),
):
    register_solver(_name, _make_baseline(_fn), kind="baseline", description=_desc)
del _name, _fn, _desc


# ----------------------------------------------------------------------
# Stateful solvers: sessions tracking a non-stationary workload
# ----------------------------------------------------------------------
@runtime_checkable
class StatefulSolver(Protocol):
    """A solver session that carries state across demand epochs.

    ``start`` initializes the session on the first epoch's instance and
    returns its :class:`SolveResult`; each ``step`` receives the *next*
    epoch's instance (same servers, new demand) and re-solves from
    whatever the session kept — typically the previous allocation.
    ``optimum`` (the epoch's offline optimum cost) enables solving only
    down to a relative bound instead of to stall.
    """

    name: str

    def start(
        self,
        inst: Instance,
        *,
        rng: np.random.Generator | int | None = None,
        optimum: float | None = None,
        **options,
    ) -> SolveResult: ...

    def step(
        self, inst: Instance, *, optimum: float | None = None, **options
    ) -> SolveResult: ...


@dataclass(frozen=True)
class StatefulSolverEntry:
    """A registered stateful-solver factory; call it for a fresh session."""

    name: str
    factory: Callable[..., StatefulSolver] = field(compare=False)
    kind: str = "tracking"
    description: str = field(default="", compare=False)

    def __call__(self, **options) -> StatefulSolver:
        return self.factory(**options)


_STATEFUL: dict[str, StatefulSolverEntry] = {}


def register_stateful_solver(
    name: str,
    factory: Callable[..., StatefulSolver] | None = None,
    *,
    kind: str = "tracking",
    description: str = "",
    overwrite: bool = False,
) -> "Callable[[Callable], StatefulSolverEntry] | StatefulSolverEntry":
    """Register a session factory under ``name``; direct or decorator use."""

    def _register(f: Callable[..., StatefulSolver]) -> StatefulSolverEntry:
        entry = StatefulSolverEntry(
            name=name, factory=f, kind=kind, description=description
        )
        _registry_add(_STATEFUL, "stateful solver", name, entry, overwrite)
        return entry

    return _register if factory is None else _register(factory)


def get_stateful_solver(name: str) -> StatefulSolverEntry:
    """Look up a registered stateful-solver factory by name."""
    return _registry_get(_STATEFUL, "stateful solver", name)


def list_stateful_solvers() -> dict[str, str]:
    """``{name: description}`` for every registered stateful solver."""
    return {n: e.description for n, e in sorted(_STATEFUL.items())}


# ----------------------------------------------------------------------
# Evaluators: metrics computed on top of an existing allocation
# ----------------------------------------------------------------------
EvaluatorFn = Callable[..., dict]

_EVALUATORS: dict[str, tuple[EvaluatorFn, str]] = {}


def register_evaluator(
    name: str,
    fn: EvaluatorFn | None = None,
    *,
    description: str = "",
    overwrite: bool = False,
):
    """Register an ``(inst, state, *, rng=None, **options) -> dict``
    evaluator; usable directly or as a decorator."""

    def _register(f: EvaluatorFn) -> EvaluatorFn:
        _registry_add(_EVALUATORS, "evaluator", name, (f, description), overwrite)
        return f

    return _register if fn is None else _register(fn)


def get_evaluator(name: str) -> EvaluatorFn:
    """Look up a registered evaluator by name."""
    return _registry_get(_EVALUATORS, "evaluator", name)[0]


def list_evaluators() -> dict[str, str]:
    """``{name: description}`` for every registered evaluator."""
    return {n: desc for n, (_, desc) in sorted(_EVALUATORS.items())}


@register_evaluator(
    "stream",
    description="Steady-state Poisson-stream simulation under the allocation's "
    "routing fractions",
)
def _evaluate_stream(
    inst,
    state,
    *,
    rng=None,
    horizon=4.0,
    events_target=2000.0,
    arrival_rate_scale=None,
):
    if arrival_rate_scale is None:
        expected = inst.total_load * horizon
        arrival_rate_scale = events_target / expected if expected > 0 else 1.0
    report = simulate_stream(
        inst, state, horizon=horizon, arrival_rate_scale=arrival_rate_scale, rng=rng
    )
    return {
        "mean_latency": float(report.mean_latency),
        "completed": int(report.completed),
        "total_latency": float(report.total_latency),
    }


@register_evaluator(
    "snapshot",
    description="Snapshot-model simulation; measured total latency versus the "
    "analytic ΣCi",
)
def _evaluate_snapshot(inst, state, *, rng=None):
    report = simulate_snapshot(inst, state, rng=rng)
    return {
        "mean_latency": float(report.mean_latency),
        "completed": int(report.completed),
        "total_latency": float(report.total_latency),
        "analytic_gap": float(report.analytic_gap(state.total_cost())),
    }


@register_evaluator(
    "livesim",
    description="Event-driven async control plane (gossip + MinE handshake "
    "agents + churn) run inside the stream simulator; convergence of the "
    "live system versus the offline optimum",
)
def _evaluate_livesim(
    inst,
    state,
    *,
    rng=None,
    preset="ideal",
    rounds=60,
    rel_tol=0.02,
    config=None,
):
    """Run :class:`repro.livesim.LiveSimulation` from the all-local start
    against the offline optimum ``state``; flat convergence metrics.

    ``rng`` (a seed or Generator) derives the single livesim seed;
    ``config`` (a :class:`repro.livesim.LiveConfig`) overrides the named
    ``preset``.
    """
    from ..livesim import LiveSimulation, get_live_preset  # lazy: avoid cycle

    if isinstance(rng, np.random.Generator):
        seed = int(rng.integers(2**31))
    else:
        seed = 0 if rng is None else int(rng)
    cfg = config if config is not None else get_live_preset(preset)
    sim = LiveSimulation(inst, config=cfg, seed=seed, optimum=state)
    report = sim.run(rounds=rounds)
    interval = sim.config.agent_interval
    return {
        "final_error": float(report.final_error),
        "converged": bool(report.final_error <= rel_tol),
        "rounds_to_bound": float(report.time_to_within(rel_tol) / interval),
        "exchanges": int(report.agents.exchanges),
        "failures": int(len(report.failures)),
        "events_processed": int(report.events_processed),
        "events_per_sec": float(report.events_per_sec),
        "mean_view_age_rounds": float(report.mean_view_age / interval),
    }
