"""Unified solver registry and parallel sweep engine.

This layer turns the repo's many algorithms into interchangeable,
discoverable parts and makes "run a grid of cells" a first-class,
parallel, resumable operation:

* :mod:`repro.engine.result` — :class:`SolveResult`, the common return
  type of every solver: allocation, total cost, wall time, iteration
  count and free-form metadata.
* :mod:`repro.engine.registry` — the :class:`Solver` protocol and the
  named registry (:func:`register_solver` / :func:`get_solver`) wrapping
  every algorithm in the repo, plus the evaluator registry
  (:func:`register_evaluator`) for metrics computed *on top of* an
  allocation (e.g. the discrete-event stream simulation).
* :mod:`repro.engine.backends` — pluggable execution backends
  (``serial``, ``threads``, ``process``, ``chunked``) running a cell
  function over a list of cells.
* :mod:`repro.engine.store` — :class:`JsonlStore`, an append-only JSONL
  result store making long sweeps crash-safe and resumable.
* :mod:`repro.engine.sweep` — :class:`SweepEngine`, tying the three
  together: cells × function × backend × store → ordered results.

Quick tour:

>>> from repro.engine import get_solver, list_solvers
>>> sorted(list_solvers())[:3]
['best-response', 'makespan-greedy', 'mine-auto']
>>> res = get_solver("mine-exact").solve(inst, rng=0)   # doctest: +SKIP
>>> res.total_cost, res.iterations, res.wall_time_s     # doctest: +SKIP
"""

from .backends import BACKENDS, resolve_workers, run_cells
from .registry import (
    FunctionSolver,
    Solver,
    StatefulSolver,
    StatefulSolverEntry,
    get_evaluator,
    get_solver,
    get_stateful_solver,
    list_evaluators,
    list_solvers,
    list_stateful_solvers,
    register_evaluator,
    register_solver,
    register_stateful_solver,
)
from .result import SolveResult
from .store import JsonlStore
from .sweep import SweepEngine

__all__ = [
    "SolveResult",
    "Solver",
    "FunctionSolver",
    "register_solver",
    "get_solver",
    "list_solvers",
    "register_evaluator",
    "get_evaluator",
    "list_evaluators",
    "StatefulSolver",
    "StatefulSolverEntry",
    "register_stateful_solver",
    "get_stateful_solver",
    "list_stateful_solvers",
    "BACKENDS",
    "run_cells",
    "resolve_workers",
    "JsonlStore",
    "SweepEngine",
]
