#!/usr/bin/env python
"""Tracking a non-stationary workload with repro.tracking.

Demand drifts epoch by epoch; the live control plane (async gossip with
delta payloads + handshake MinE agents) chases the moving optimum, and a
warm-start stateful solver is compared against a cold-restart baseline
on the same trace — the paper's "networks with dynamically changing
loads" claim, measured.

Run: python examples/workload_tracking.py
(set REPRO_EXAMPLE_M to scale the fleet, e.g. the test suite uses 8)
"""

import dataclasses
import os

from repro.livesim import get_live_preset
from repro.tracking import TrackingSimulation, tracking_sweep
from repro.workloads import get_scenario


def main() -> None:
    m = int(os.environ.get("REPRO_EXAMPLE_M", "20"))
    sc = get_scenario("federation-diurnal")
    inst = sc.instance(m, seed=0)

    # --- the live plane following a drifting demand --------------------
    cfg = dataclasses.replace(get_live_preset("lossy"), gossip_mode="delta")
    sim = TrackingSimulation(inst, "drift", config=cfg, seed=0)
    report = sim.run()

    print(f"live tracking: {m} servers, drift trace, lossy WAN, delta gossip")
    print(f"{'epoch':>5} {'optimum':>10} {'shift err':>10} {'final err':>10} "
          f"{'retrack':>8} {'exchanges':>10}")
    for e in report.epochs:
        print(f"{e.index:>5} {e.optimum_cost:>10.1f} {e.start_error:>9.1%} "
              f"{e.final_error:>10.2e} {e.retrack_rounds:>6.1f}r "
              f"{e.exchanges:>10}")
    print(f"\nevery epoch re-tracked to 2%: {report.all_retracked()}")
    print(f"cumulative excess cost ∫(C−C*)dt: "
          f"{report.cumulative_excess_cost:,.0f}")
    print(f"delta-gossip payload shipped: "
          f"{report.live.gossip.payload_bytes / 2**20:.2f} MiB")

    # --- warm-start vs cold-restart stateful solvers -------------------
    rows = tracking_sweep([sc], traces=["drift-mild"], sizes=[m], seeds=[0],
                          solvers=("mine-warm", "mine-cold"))
    print("\nstateful solvers on the same fleet (mild drift):")
    for r in rows:
        print(f"  {r['solver']:<10} exchanges/shift="
              f"{r['mean_step_exchanges']:6.1f}  mean err={r['mean_error']:.2e}"
              f"  re-tracked {r['retracked_epochs']}/{r['epochs']} epochs")
    warm, cold = rows
    if warm["mean_step_exchanges"] > 0:
        print(f"  warm start re-tracks with "
              f"{cold['mean_step_exchanges'] / warm['mean_step_exchanges']:.1f}x "
              f"fewer exchanges than a cold restart")


if __name__ == "__main__":
    main()
