#!/usr/bin/env python
"""A federation of selfish datacenters (Section V): price of anarchy.

Each datacenter offloads its own compute jobs to minimize only its own
average completion time.  The example runs best-response dynamics to a
Nash equilibrium, verifies the Lemma 3 load-spread bound, and compares
the measured cost of selfishness against the Theorem 1 window on a
homogeneous network — then repeats on a heterogeneous (PlanetLab-like)
one, where the paper's experiments (Table III) found the loss even lower.

Run: python examples/cloud_federation_selfish.py
"""

import numpy as np

import repro


def homogeneous_case() -> None:
    print("=== homogeneous federation (Theorem 1 territory) ===")
    m, speed, delay, lav = 12, 1.0, 2.0, 100.0
    rng = np.random.default_rng(1)
    loads = rng.uniform(0.0, 2 * lav, m)  # bursty demand
    inst = repro.Instance.homogeneous(m, speed=speed, delay=delay, loads=loads)

    ratio, ne, opt = repro.price_of_anarchy(inst, rng=0, tol_change=1e-4)
    lo = repro.poa_lower_bound(inst)
    hi = repro.poa_upper_bound(inst)
    print(f"measured cost of selfishness: {ratio:.4f}")
    print(f"Theorem 1 PoA window:         [{lo:.4f}, {hi:.4f}] "
          f"(2cs/lav = {2 * delay * speed / inst.average_load:.4f})")
    print("(the PoA bounds the *worst* equilibrium; best-response dynamics"
          " may land on a better one, below the window)")
    spread = ne.loads.max() - ne.loads.min()
    print(f"Lemma 3: max load spread {spread:.2f} ≤ c·s = "
          f"{repro.lemma3_bound(inst):.2f} -> "
          f"{'holds' if repro.lemma3_violation(inst, ne) <= 1e-6 else 'VIOLATED'}")
    print(f"Nash gap (certificate):       {repro.nash_gap(inst, ne):.2e}\n")


def heterogeneous_case() -> None:
    print("=== heterogeneous federation (Table III territory) ===")
    rng = np.random.default_rng(2)
    m = 20
    inst = repro.Instance(
        speeds=repro.random_speeds(m, rng=rng),
        loads=rng.exponential(50.0, m),
        latency=repro.planetlab_like_latency(m, rng=rng),
    )
    ne, trace = repro.best_response_dynamics(inst, rng=0, tol_change=0.01)
    opt = repro.solve_optimal(inst)
    ratio = ne.total_cost() / opt.total_cost()
    print(f"best-response dynamics converged in {trace.rounds} rounds")
    print(f"selfish equilibrium:  ΣCi = {ne.total_cost():12.1f}")
    print(f"cooperative optimum:  ΣCi = {opt.total_cost():12.1f}")
    print(f"cost of selfishness:  {ratio:.4f}  "
          f"(paper's Table III: < 1.15 everywhere)")

    # who wins, who loses under selfishness?
    ci_ne = ne.per_org_cost()
    ci_opt = opt.per_org_cost()
    winners = int((ci_ne < ci_opt * 0.999).sum())
    losers = int((ci_ne > ci_opt * 1.001).sum())
    print(f"organizations better off selfish: {winners}, worse off: {losers} "
          f"(of {m})")


def main() -> None:
    homogeneous_case()
    heterogeneous_case()


if __name__ == "__main__":
    main()
