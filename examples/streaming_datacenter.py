#!/usr/bin/env python
"""Real-time stream processing in a distributed cloud (Section I's
motivating workload) — validated on the discrete-event simulator.

A cloud of datacenters processes continuous request streams (e.g. video
frames feeding a 3-D model).  One region produces far more traffic than
its local datacenter can absorb.  We compare three routing policies under
a *streaming* (Poisson-arrival) workload on the DES:

* local-only (no offloading) — the hot datacenter melts down;
* delay-blind equal split — stabilizes the queue but pays needless WAN
  latency;
* the paper's delay-aware optimum — stable *and* latency-frugal.

Run: python examples/streaming_datacenter.py
"""

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(11)
    m = 8

    latency_ms = repro.planetlab_like_latency(m, rng=rng)
    # work in seconds for the streaming sim: 50 ms RTT -> 0.05 s
    latency = latency_ms / 1000.0
    speeds = np.full(m, 30.0)  # each datacenter serves 30 req/s

    # demand: one hot region produces 80 req/s, others 10 req/s
    rates = np.full(m, 10.0)
    rates[0] = 80.0
    inst = repro.Instance(speeds, rates, latency)
    print(f"{m} datacenters, {speeds[0]:.0f} req/s each "
          f"(total capacity {speeds.sum():.0f} req/s), demand "
          f"{rates.sum():.0f} req/s, hot region at {rates[0]:.0f} req/s")

    policies = {
        "local-only": repro.AllocationState.initial(inst),
        "equal split": repro.AllocationState.from_fractions(
            inst, np.full((m, m), 1.0 / m)
        ),
        "delay-aware optimum": repro.solve_optimal(inst),
    }

    print(f"\n{'policy':<22}{'analytic ΣCi':>14}{'mean sojourn':>14}"
          f"{'completed':>11}")
    for name, state in policies.items():
        report = repro.simulate_stream(inst, state, horizon=120.0, rng=3)
        print(f"{name:<22}{state.total_cost():>14.2f}"
              f"{report.mean_latency:>13.3f}s{report.completed:>11d}")

    opt = policies["delay-aware optimum"]
    rho = opt.fractions()
    offloaded = 1.0 - rho[0, 0]
    print(f"\nthe optimum offloads {offloaded:.0%} of the hot region's "
          f"stream, preferring nearby datacenters:")
    order = np.argsort(latency[0])
    for j in order[:4]:
        if rho[0, j] > 0.01:
            print(f"  -> datacenter {j}: {rho[0, j]:.1%} of the stream "
                  f"({latency_ms[0, j]:.1f} ms away)")


if __name__ == "__main__":
    main()
