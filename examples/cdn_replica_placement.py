#!/usr/bin/env python
"""CDN scenario (Section VII): content chunks of different popularity,
redundancy requirements, discrete placement.

An organizationally-distributed CDN: each ISP's front-end server receives
requests for content chunks with Zipf-distributed popularity.  Requests
can be served from any back-end; latency = network RTT + congestion.  The
pipeline is the paper's Section VII extension:

1. fractional delay-aware optimum with n_i = Σ_k p_i(k);
2. replication constraint ρ_ij ≤ 1/R (every chunk stored at R distinct
   sites for availability), solved with bounded water-filling;
3. randomized placement with exact marginals R·ρ_ij (systematic
   sampling) and discrete chunk-to-server rounding.

Run: python examples/cdn_replica_placement.py
"""

import numpy as np

import repro

REPLICAS = 2


def main() -> None:
    rng = np.random.default_rng(7)
    m = 12  # CDN sites (one per ISP)

    latency = repro.planetlab_like_latency(m, rng=rng)
    speeds = repro.random_speeds(m, rng=rng)

    # Each site serves requests for 200 chunks with Zipf(1.1) popularity;
    # a chunk's "size" = its current request volume.
    chunk_popularity = 1.0 / np.arange(1, 201) ** 1.1
    task_sets = [
        repro.TaskSet(i, chunk_popularity * rng.uniform(50, 400))
        for i in range(m)
    ]
    print(f"CDN with {m} sites, {sum(t.sizes.size for t in task_sets)} chunks, "
          f"total request volume {sum(t.total for t in task_sets):.0f}")

    # ------------------------------------------------------------------
    # Fractional optimum + discrete rounding (multiple subset-sum)
    # ------------------------------------------------------------------
    opt, assignments = repro.solve_discrete(speeds, latency, task_sets)
    inst = opt.inst
    naive = repro.AllocationState.initial(inst)
    print(f"\nall-local cost:      ΣCi = {naive.total_cost():12.1f}")
    print(f"fractional optimum:  ΣCi = {opt.total_cost():12.1f}")

    total_err = sum(
        a.error(t.sizes) for a, t in zip(assignments, task_sets)
    )
    print(f"discrete rounding:   total deviation from fractional targets "
          f"= {total_err:.1f} ({total_err / inst.total_load:.2%} of volume)")

    # ------------------------------------------------------------------
    # Replication: every chunk stored at R distinct sites
    # ------------------------------------------------------------------
    rep = repro.solve_replicated(inst, REPLICAS)
    print(f"\nwith R={REPLICAS} replication: ΣCi = {rep.total_cost():12.1f} "
          f"(+{rep.total_cost() / opt.total_cost() - 1:.1%} vs unconstrained)")

    rho = rep.fractions()
    site = 0
    placements = [
        repro.sample_replica_placement(rho[site], REPLICAS, rng=rng)
        for _ in range(5)
    ]
    print(f"sample placements of site {site}'s chunks (always {REPLICAS} "
          f"distinct sites):")
    for k, p in enumerate(placements):
        print(f"  chunk {k}: sites {p.tolist()}")

    # empirical check of the marginals on a few thousand draws
    counts = np.zeros(m)
    trials = 3000
    for _ in range(trials):
        for j in repro.sample_replica_placement(rho[site], REPLICAS, rng=rng):
            counts[j] += 1
    worst = np.abs(counts / trials - REPLICAS * rho[site]).max()
    print(f"empirical inclusion frequencies match R·ρ within {worst:.3f} "
          f"({trials} draws)")


if __name__ == "__main__":
    main()
