#!/usr/bin/env python
"""Bring your own workload: a measured latency matrix + a custom load model.

Shows the extension points of :mod:`repro.workloads`:

1. load a *measured* RTT matrix (here: written to a temp .csv with a few
   missing pairs, completed by shortest paths exactly as the paper
   prepared the iPlane data);
2. define a custom :class:`LoadModel` (a batch-window model: loads arrive
   in bursts of whole batches);
3. register the combination as a named :class:`Scenario` and sweep it
   against a built-in preset with the same runner.

Run: python examples/custom_scenario.py
(set REPRO_EXAMPLE_M to scale the sweep, e.g. the test suite uses 8)
"""

import os
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.workloads import (
    Scenario,
    ScenarioRunner,
    measured_latency,
    register_scenario,
    ring_of_clusters_latency,
)


@dataclass(frozen=True)
class BatchWindowLoads:
    """Requests arrive in whole batches: ``n_i = batch · Poisson(rate)``.

    Any object with ``sample``/``trace`` is a valid LoadModel — no
    registration or inheritance required.
    """

    batch: float = 25.0
    rate: float = 3.0

    def sample(self, m: int, rng: np.random.Generator) -> np.ndarray:
        return self.batch * (1.0 + rng.poisson(self.rate, size=m))

    def trace(self, m: int, steps: int, rng: np.random.Generator) -> np.ndarray:
        return np.stack([self.sample(m, rng) for _ in range(steps)])


def write_measured_csv(path: str, m: int) -> None:
    """Fake a measurement campaign: a ring-of-clusters ground truth with
    15% of the pairs never measured (NaN in the CSV)."""
    rng = np.random.default_rng(2013)
    c = ring_of_clusters_latency(m, rng=rng, clusters=4)
    mask = np.triu(rng.uniform(size=(m, m)) < 0.15, 1)
    c = c.copy()
    c[mask | mask.T] = np.nan
    np.savetxt(path, c, delimiter=",")


def main() -> None:
    m = int(os.environ.get("REPRO_EXAMPLE_M", "24"))

    with tempfile.TemporaryDirectory() as tmp:
        csv_path = os.path.join(tmp, "measured_rtt.csv")
        write_measured_csv(csv_path, m)
        latency = measured_latency(csv_path)  # symmetrized + completed
    print(f"measured matrix: {m}×{m}, "
          f"mean RTT {latency[~np.eye(m, dtype=bool)].mean():.1f} ms")

    register_scenario(
        Scenario(
            name="measured-batch",
            topology=lambda n, *, rng=None, _c=latency: _c[:n, :n],
            load_model=BatchWindowLoads(batch=25.0, rate=3.0),
            m=m,
            description="measured RTT campaign + batch-window arrivals",
        ),
        overwrite=True,
    )

    report = ScenarioRunner(
        ["measured-batch", "paper-planetlab"],
        sizes=[m],
        seeds=[0, 1, 2],
        mine_max_iterations=30,
    ).run()

    print("\n(scenario, seed) → metrics:")
    for r in report:
        print(f"  {r.scenario:18s} seed={r.seed}  opt={r.optimal_cost:12.1f}  "
              f"MinE err={r.mine_final_error:7.4f}  PoA={r.poa_ratio:6.3f}  "
              f"sim latency={r.stream_mean_latency:7.2f} ms")

    gain = report.filter(scenario="measured-batch").column("initial_cost") / \
        report.filter(scenario="measured-batch").column("optimal_cost")
    print(f"\ncooperative balancing gain on the measured network: "
          f"{gain.mean():.2f}× cheaper than everyone-local")


if __name__ == "__main__":
    main()
