#!/usr/bin/env python
"""Live rebalancing: the async control plane versus lock-step MinE.

The lock-step layers advance gossip and MinE in synchronized rounds; the
:mod:`repro.livesim` subsystem instead runs everything as discrete
events on one heap — gossip exchanges delayed by real RTTs, pairwise
exchanges negotiated by a propose/accept handshake, servers crashing and
rejoining — while Poisson request traffic is routed by the live,
changing allocation.

This example runs one scenario three ways and prints the ΣCi
trajectories on a shared round clock:

1. ``sync``  — classic :class:`repro.MinEOptimizer` sweeps,
2. ``async`` — the ideal event-driven plane (stale views, no losses),
3. ``churn`` — the same plane with message loss and server restarts.

Run: python examples/live_rebalancing.py
"""

import dataclasses
import os

import numpy as np

import repro
from repro.livesim import LiveSimulation, get_live_preset
from repro.workloads import cached_instance, cached_optimum, get_scenario


def main() -> None:
    m = int(os.environ.get("REPRO_EXAMPLE_M", "24"))
    rounds = 90
    sc = get_scenario("paper-planetlab")
    inst = cached_instance(sc, m, 0)
    opt_state, opt_cost, _, _ = cached_optimum(sc, m, 0)
    print(f"scenario {sc.name}, m={m}: offline optimum ΣCi = {opt_cost:.4g}\n")

    # 1. Lock-step reference: one sweep = one round.
    state = repro.AllocationState.initial(inst)
    trace = repro.MinEOptimizer(state, rng=0, strategy="exact").run(
        max_iterations=rounds, optimum=opt_cost, rel_tol=1e-6
    )
    sync_errs = trace.relative_errors(opt_cost)

    # 2+3. Event-driven planes (with a trickle of live request traffic).
    reports = {}
    for preset in ("ideal", "churn"):
        cfg = dataclasses.replace(
            get_live_preset(preset), arrival_rate_scale=0.001
        )
        sim = LiveSimulation(inst, config=cfg, seed=0, optimum=opt_state)
        reports[preset] = (sim, sim.run(rounds=rounds))

    print(f"{'round':>6} {'sync':>10} {'async':>10} {'churn':>10}")

    def err_at(report, sim, t):
        idx = np.searchsorted(report.times, t, side="right") - 1
        return report.relative_errors()[max(idx, 0)]

    for r in (0, 1, 2, 3, 5, 8, 13, 21, 34, 55, rounds):
        cells = [f"{r:>6}"]
        s_err = sync_errs[min(r, len(sync_errs) - 1)]
        cells.append(f"{s_err:>10.2e}")
        for preset in ("ideal", "churn"):
            sim, report = reports[preset]
            t = r * sim.config.agent_interval
            cells.append(f"{err_at(report, sim, t):>10.2e}")
        print(" ".join(cells))

    ideal_sim, ideal_rep = reports["ideal"]
    churn_sim, churn_rep = reports["churn"]
    interval = ideal_sim.config.agent_interval
    print(
        f"\nasync ideal: {ideal_rep.agents.exchanges} exchanges via "
        f"{ideal_rep.agents.proposals} proposals "
        f"(+{ideal_rep.agents.skipped_proposals} memoized away, "
        f"{ideal_rep.net.sent} control messages, mean view age "
        f"{ideal_rep.mean_view_age / interval:.1f} rounds), "
        f"{ideal_rep.events_per_sec:,.0f} events/s on the "
        f"'{ideal_sim.env.scheduler_in_use}' scheduler"
    )
    print(
        f"async ideal traffic: {ideal_rep.requests_completed} requests served, "
        f"mean latency {ideal_rep.request_mean_latency:.1f} ms"
    )
    reconv = churn_rep.reconvergence_times(0.02)
    lags = [
        (t_re - t_f) / interval
        for (t_f, _), t_re in zip(churn_rep.failures, reconv)
        if np.isfinite(t_re)
    ]
    print(
        f"churn plane: {len(churn_rep.failures)} server restarts, "
        f"{churn_rep.net.dropped} messages dropped; re-converged within 2% "
        f"after {len(lags)}/{len(churn_rep.failures)} failures "
        f"(mean lag {np.mean(lags):.1f} rounds)" if lags else
        f"churn plane: {len(churn_rep.failures)} server restarts"
    )
    print(
        f"\ntime-to-2%-bound: sync "
        f"{int(np.argmax(sync_errs <= 0.02))} rounds, async "
        f"{ideal_rep.time_to_within(0.02) / interval:.1f} rounds "
        f"(views stale by in-flight time, yet same fixed point — §IV)"
    )


if __name__ == "__main__":
    main()
