#!/usr/bin/env python
"""Scenario sweeps: run every named workload through the full stack.

The :mod:`repro.workloads` subsystem replaces hand-built instances with a
registry of named scenarios (topology family × load model × seed) and a
config-driven batch runner.  One ``ScenarioRunner.run()`` call pushes a
whole cartesian grid — scenarios × sizes × seeds — through the
cooperative optimum, the distributed MinE algorithm, the selfish
best-response dynamics and the discrete-event stream simulator, and
returns a tabular report.

Execution goes through :mod:`repro.engine`: set
``REPRO_SWEEP_BACKEND=process`` to fan the cells out over every core —
each cell carries its own deterministic seeds, so the parallel report is
bitwise-identical to the serial one.

Run: python examples/scenario_sweep.py
(set REPRO_EXAMPLE_M to scale the sweep, e.g. the test suite uses 8)
"""

import os

from repro.workloads import ScenarioRunner, list_scenarios

PRESETS = [
    "paper-homogeneous",   # §VI-A baseline
    "paper-planetlab",     # §VI-A heterogeneous RTTs
    "cdn-flashcrowd",      # a few edge sites hit by a crowd
    "federation-diurnal",  # geo-ring with day/night phases
    "datacenter-fattree",  # Clos fabric, log-normal tenants
    "regional-surge",      # correlated whole-region surges
]


def main() -> None:
    m = int(os.environ.get("REPRO_EXAMPLE_M", "30"))
    sizes = [m // 2, m]
    seeds = [0, 1]

    print("registered scenarios:")
    for name, desc in list_scenarios().items():
        marker = "*" if name in PRESETS else " "
        print(f" {marker} {name:22s} {desc}")

    runner = ScenarioRunner(
        PRESETS,
        sizes=sizes,
        seeds=seeds,
        mine_max_iterations=30,
        mine_rel_tol=0.01,
        stream_events_target=1000.0,
    )
    backend = os.environ.get("REPRO_SWEEP_BACKEND", "serial")
    cells = len(runner.grid())
    print(f"\nsweeping {len(PRESETS)} scenarios × {sizes} × seeds {seeds} "
          f"= {cells} runs ({backend} backend) ...")
    report = runner.run(
        backend=backend,
        progress=lambda r: print(
            f"  {r.scenario:22s} m={r.m:3d} seed={r.seed}  "
            f"opt={r.optimal_cost:12.1f}  MinE err={r.mine_final_error:7.4f} "
            f"({r.mine_iterations:2d} it)  PoA={r.poa_ratio:6.3f}  "
            f"sim latency={r.stream_mean_latency:7.2f} ms  "
            f"[{r.elapsed_s:5.2f} s]"
        )
    )

    print("\nper-scenario means over seeds:")
    hdr = f"  {'scenario':22s} {'m':>4s} {'opt cost':>12s} {'MinE err':>9s} {'PoA':>7s} {'latency':>9s}"
    print(hdr)
    for row in report.summary():
        print(f"  {row['scenario']:22s} {row['m']:4d} "
              f"{row['optimal_cost']:12.1f} {row['mine_final_error']:9.4f} "
              f"{row['poa_ratio']:7.3f} {row['stream_mean_latency']:9.2f}")

    out = os.environ.get("REPRO_SWEEP_CSV")
    if out:
        report.to_csv(out)
        print(f"\nfull table written to {out}")


if __name__ == "__main__":
    main()
