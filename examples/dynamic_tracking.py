#!/usr/bin/env python
"""Tracking dynamically changing loads (the abstract's operational claim).

"During the experimental evaluation, we show that the distributed
algorithm is efficient, therefore it can be used in networks with
dynamically changing loads."  This example makes that concrete: loads
follow diurnal waves with noise and occasional flash crowds, and instead
of re-solving from scratch every epoch, the balancer warm-starts from the
previous fractions and runs just a couple of MinE sweeps.

Run: python examples/dynamic_tracking.py
"""

import numpy as np

import repro
from repro.core.dynamic import DynamicBalancer, LoadProcess


def main() -> None:
    rng = np.random.default_rng(5)
    m = 16
    inst = repro.Instance(
        speeds=repro.random_speeds(m, rng=rng),
        loads=np.zeros(m),  # template; the process supplies per-epoch loads
        latency=repro.planetlab_like_latency(m, rng=rng),
    )
    process = LoadProcess(
        base=rng.uniform(50, 250, m),
        amplitude=0.6,     # ±60% diurnal swing
        period=24.0,
        noise_sigma=0.15,
        spike_rate=0.01,   # occasional flash crowd
        spike_factor=15.0,
        rng=1,
    )

    balancer = DynamicBalancer(inst, process, sweeps_per_epoch=2, rng_seed=0)
    print(f"{m} servers; 48 epochs (2 simulated days); "
          f"2 MinE sweeps per epoch, warm-started\n")
    print(f"{'epoch':>5} {'total load':>11} {'ΣCi':>12} {'optimum':>12} "
          f"{'excess':>8} {'sweeps':>7}")
    records = balancer.run(48)
    for r in records:
        if r.epoch % 4 == 0 or r.tracking_error > 0.05:
            total = r.optimum  # proxy for scale
            print(f"{r.epoch:>5} {process.base.sum():>11.0f} {r.cost:>12.1f} "
                  f"{r.optimum:>12.1f} {r.tracking_error:>7.2%} "
                  f"{r.sweeps_used:>7}")

    print(f"\nmean tracking error over all epochs: "
          f"{balancer.mean_tracking_error():.2%}")
    worst = max(r.tracking_error for r in records)
    print(f"worst epoch (flash crowds included):  {worst:.2%}")
    print("\nre-solving from scratch would need ~6-10 iterations per epoch;")
    print("warm-started tracking stays near-optimal with 2.")


if __name__ == "__main__":
    main()
