#!/usr/bin/env python
"""Sharded sweeps end to end: N worker processes, one merged store.

The PR-4 sharding mechanism in one runnable walkthrough:

1. the coordinator launches N copies of *this script* as workers, each
   with ``--shard k/N`` and its own ``--store shard-k.jsonl`` — every
   worker executes only its slice of the pending cells (the same flags
   every ``results/`` script accepts, so the workers could just as well
   be N different machines sharing nothing but the grid definition);
2. each worker appends finished cells to its crash-safe JSONL store;
3. the coordinator stitches the shard stores with
   ``JsonlStore.merge(*paths, out=...)`` and re-runs the sweep against
   the merged store — every cell is already present, so the final pass
   is pure cache reads that yield the full result table.

The grid here is a tracking sweep (scenario × trace × stateful solver),
but any SweepEngine-based sweep shards the same way.

Run: python examples/sharded_sweep_coordinator.py
(set REPRO_EXAMPLE_M to scale the fleet, e.g. the test suite uses 8)
"""

import argparse
import os
import pathlib
import subprocess
import sys
import tempfile

from repro.engine import JsonlStore
from repro.obs import logconf
from repro.tracking import tracking_sweep

log = logconf.get_logger("examples.sharded_sweep")

SCENARIOS = ["paper-planetlab", "federation-diurnal"]
TRACES = ["drift"]
SOLVERS = ("mine-warm", "mine-cold")
SEEDS = (0,)
N_SHARDS = 2


def run_sweep(m: int, store, shard=None):
    return tracking_sweep(
        SCENARIOS,
        traces=TRACES,
        solvers=SOLVERS,
        sizes=[m],
        seeds=SEEDS,
        max_sweeps=30,
        store=store,
        shard=shard,
    )


def worker(m: int, store: str, shard: str) -> None:
    rows = run_sweep(m, store, shard=shard)
    done = sum(r is not None for r in rows)
    log.info("[worker %s] computed %d of %d cells -> %s",
             shard, done, len(rows), store)


def coordinator(m: int) -> None:
    total = len(SCENARIOS) * len(TRACES) * len(SOLVERS) * len(SEEDS)
    log.info("sharded sweep: %d cells over %d local workers", total, N_SHARDS)
    with tempfile.TemporaryDirectory(prefix="sharded-sweep-") as tmp:
        tmp = pathlib.Path(tmp)
        shard_stores = [tmp / f"shard-{k}.jsonl" for k in range(1, N_SHARDS + 1)]

        # 1. Launch the workers: this same script, one shard each.  A
        # real deployment would run these on N machines; the flags are
        # identical.
        env = dict(os.environ, REPRO_EXAMPLE_M=str(m))
        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        if src.is_dir():
            env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        procs = [
            subprocess.Popen(
                [sys.executable, __file__,
                 "--shard", f"{k}/{N_SHARDS}", "--store", str(path)],
                env=env,
            )
            for k, path in enumerate(shard_stores, start=1)
        ]
        for proc in procs:
            proc.wait()
            if proc.returncode != 0:
                raise SystemExit(f"worker failed with rc={proc.returncode}")

        # 2. Stitch the shard stores into one.
        merged_path = tmp / "merged.jsonl"
        merged = JsonlStore.merge(*shard_stores, out=merged_path)
        log.info("merged %d shard stores -> %d cells", N_SHARDS, len(merged))
        assert len(merged) == total, "shards did not cover the whole grid"

        # 3. Aggregate: re-run against the merged store — all cells hit
        # the cache, so this is instant and yields the full table.
        rows = run_sweep(m, merged_path)
        print(f"\n{'scenario':<22} {'solver':<10} {'exch/shift':>10} "
              f"{'mean err':>10} {'retracked':>10}")
        for r in rows:
            print(f"{r['scenario']:<22} {r['solver']:<10} "
                  f"{r['mean_step_exchanges']:>10.1f} {r['mean_error']:>10.2e} "
                  f"{r['retracked_epochs']:>6}/{r['epochs']}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shard", default=None, metavar="K/N",
                        help="worker mode: compute only this shard's cells")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="worker mode: JSONL store to append results to")
    # parse_known_args: the smoke tests execute this file via runpy with
    # the test runner's own flags still in sys.argv.
    args, _ = parser.parse_known_args()
    logconf.configure(os.environ.get("REPRO_LOG_LEVEL", "INFO"))
    m = int(os.environ.get("REPRO_EXAMPLE_M", "14"))
    if args.shard is not None:
        if args.store is None:
            parser.error("--shard requires --store")
        worker(m, args.store, args.shard)
    else:
        coordinator(m)


if __name__ == "__main__":
    main()
