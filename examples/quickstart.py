#!/usr/bin/env python
"""Quickstart: balance a network of request-processing servers.

Builds a 25-server heterogeneous network, computes the cooperative
optimum centrally, runs the *distributed* Min-Error algorithm to the same
answer, and reports the Proposition 1 error certificate along the way.

Run: python examples/quickstart.py
(set REPRO_EXAMPLE_M to scale the network, e.g. the test suite uses 8)
"""

import os

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(42)
    m = int(os.environ.get("REPRO_EXAMPLE_M", "25"))

    # --- the system: speeds, initial loads, pairwise latencies (ms) ------
    inst = repro.Instance(
        speeds=repro.random_speeds(m, rng=rng),          # [1, 5] as in §VI-A
        loads=rng.exponential(200.0, m),                 # requests per org
        latency=repro.planetlab_like_latency(m, rng=rng),
    )
    print(f"network: m={inst.m}, total load={inst.total_load:.0f} requests, "
          f"average latency={inst.latency.mean():.1f} ms")

    # --- everyone runs their own requests locally -----------------------
    state = repro.AllocationState.initial(inst)
    print(f"\nno balancing:        ΣCi = {state.total_cost():12.1f}")

    # --- cooperative optimum, computed centrally (Section III) ----------
    opt = repro.solve_optimal(inst)
    print(f"cooperative optimum: ΣCi = {opt.total_cost():12.1f}")

    # --- the distributed algorithm (Section IV) -------------------------
    optimizer = repro.MinEOptimizer(state, rng=0)
    print("\ndistributed MinE algorithm:")
    for k in range(1, 21):
        stats = optimizer.sweep()
        bound = repro.error_bound(inst, state)
        rel = (stats.cost_after - opt.total_cost()) / opt.total_cost()
        print(f"  iteration {k:2d}: ΣCi = {stats.cost_after:12.1f}  "
              f"(rel. error {rel:8.5f}, Prop.1 bound on ‖ρ−ρ*‖₁ ≤ {bound:9.1f})")
        if rel < 1e-4:
            break

    # --- sanity-check the model with the discrete-event simulator -------
    report = repro.simulate_snapshot(inst, state, rng=1)
    gap = report.analytic_gap(state.total_cost())
    print(f"\nDES validation: measured total latency {report.total_latency:.1f} "
          f"vs analytic {state.total_cost():.1f} (gap {gap:.2%})")


if __name__ == "__main__":
    main()
