#!/usr/bin/env python
"""Byzantine robustness: what the robust merge buys under attack.

Compromised servers cannot corrupt an allocation directly — the
pairwise handshake settles transfers on true state — but their *gossip*
can lie: stale repeaters freeze the fleet's views, freeloaders claim
zero load and refuse every exchange, fabricators forge entries about
third parties.  This example runs one ``byzantine-*`` preset across
``f = 0 .. f_max`` compromised servers, with the legacy merge and with
the robust merge (quorum + trimmed mean + placement clamps), and prints
the degradation curves side by side — plus whether the robust merge's
per-server suspicion scores point at the actual adversaries.

Run: python examples/byzantine_robustness.py
"""

import dataclasses
import os

import numpy as np

from repro.byz import get_byz_preset, run_byz


def main() -> None:
    preset = get_byz_preset("byzantine-stale")
    m = int(os.environ.get("REPRO_EXAMPLE_M", str(preset.m)))
    if m != preset.m:
        preset = dataclasses.replace(preset, m=m)
    print(
        f"preset {preset.name}: {preset.model.model} on {preset.scenario}, "
        f"m={preset.m}, f_max={preset.f_max}, "
        f"bound {preset.error_bound:.0%} of the offline optimum\n"
    )

    print(f"{'f':>3} {'legacy merge':>14} {'robust merge':>14}")
    last = None
    for f in range(preset.f_max + 1):
        legacy = run_byz(preset, f=f, robust=False)
        robust = run_byz(preset, f=f, robust=True)
        verdict = "" if robust.within_bound else "  <-- robust broke"
        if not legacy.within_bound and robust.within_bound:
            verdict = "  <-- robust holds, legacy broke"
        print(
            f"{f:>3} {legacy.error:>14.4f} {robust.error:>14.4f}{verdict}"
        )
        last = robust

    top = np.argsort(last.suspicion)[::-1][: len(last.adversaries)]
    hit = set(int(s) for s in top) == set(last.adversaries)
    print(
        f"\nat f={last.f}: compromised servers {sorted(last.adversaries)}, "
        f"top-{last.f} suspicion {sorted(int(s) for s in top)}"
        f" — {'identified' if hit else 'partially masked'}"
    )
    print(
        f"robust merge stats: {last.report.gossip.robust_accepts} quorum "
        f"accepts, {last.report.gossip.quorum_holds} held, "
        f"{last.report.gossip.clamps} placement clamps, "
        f"{last.report.gossip.outliers} outliers trimmed"
    )


if __name__ == "__main__":
    main()
