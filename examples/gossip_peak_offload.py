#!/usr/bin/env python
"""Fully distributed operation: gossip + MinE + negative-cycle removal.

The scenario behind Figure 2: one organization suddenly owns a huge pile
of requests (a traffic peak) in a large network.  No central coordinator
exists — load information spreads by push–pull gossip, every server runs
Algorithm 2 against its *gossiped* view, and the appendix's min-cost-flow
pass periodically rewires relays.  The example traces ΣCi, the gossip
staleness and the Proposition 1 error certificate per iteration.

Run: python examples/gossip_peak_offload.py
"""

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(23)
    m = 60

    loads = np.zeros(m)
    loads[int(rng.integers(0, m))] = 100_000.0  # the peak (paper §VI-A)
    inst = repro.Instance(
        speeds=repro.random_speeds(m, rng=rng),
        loads=loads,
        latency=repro.planetlab_like_latency(m, rng=rng),
    )
    opt_cost = repro.solve_optimal(inst).total_cost()

    state = repro.AllocationState.initial(inst)
    gossip = repro.GossipNetwork(m, rng=1)
    gossip.publish_all(state.loads)
    gossip.rounds_to_convergence()

    optimizer = repro.MinEOptimizer(
        state, rng=2, load_view=gossip.view, cycle_removal_every=4
    )
    gossip_rounds = int(np.ceil(np.log2(m))) + 1

    print(f"peak of 100k requests on one of {m} servers; "
          f"optimum ΣCi = {opt_cost:.3g}\n")
    print(f"{'iter':>4} {'ΣCi':>12} {'rel.err':>9} {'staleness':>10} "
          f"{'err bound':>12}")
    for it in range(1, 16):
        stats = optimizer.sweep()
        gossip.publish_all(state.loads)
        for _ in range(gossip_rounds):
            gossip.round()
        rel = (stats.cost_after - opt_cost) / opt_cost
        bound = repro.error_bound(inst, state)
        print(f"{it:>4} {stats.cost_after:>12.4g} {rel:>9.5f} "
              f"{gossip.staleness():>10.3f} {bound:>12.4g}")
        if rel < 1e-4:
            break

    spread = state.loads
    print(f"\nfinal load spread: min={spread.min():.0f}, "
          f"median={np.median(spread):.0f}, max={spread.max():.0f} "
          f"(started with one server at 100000)")


if __name__ == "__main__":
    main()
