#!/usr/bin/env python
"""Solver shootout: every registered algorithm on the same instance.

The :mod:`repro.engine` registry gives every algorithm in the repo — the
centralized optimum, the three MinE partner strategies, the four
baselines the paper argues against and the selfish best-response
dynamics — one calling convention and one return type
(:class:`repro.SolveResult`).  That makes "compare all algorithms on a
scenario" a five-line loop, with cost, iteration count and wall time
coming back uniformly.

Run: python examples/solver_shootout.py
(set REPRO_EXAMPLE_M to change the instance size)
"""

import os

from repro.engine import get_solver, list_solvers
from repro.workloads import get_scenario

SCENARIO = "cdn-flashcrowd"


def main() -> None:
    m = int(os.environ.get("REPRO_EXAMPLE_M", "40"))
    inst = get_scenario(SCENARIO).instance(m=m, seed=0)
    print(f"scenario {SCENARIO!r}, m={m}, total load {inst.total_load:.0f}\n")

    opt = get_solver("optimal").solve(inst)
    print(f"{'solver':<20} {'ΣCi':>12} {'vs opt':>8} {'iters':>6} {'wall':>9}")
    for name in sorted(list_solvers()):
        res = (
            opt
            if name == "optimal"
            else get_solver(name).solve(inst, rng=0, optimum=opt.total_cost)
        )
        gap = res.relative_error(opt.total_cost)
        print(
            f"{name:<20} {res.total_cost:12.1f} {gap:8.2%} "
            f"{res.iterations:6d} {res.wall_time_s * 1e3:7.1f}ms"
        )

    print(
        "\nthe cooperative optimum anchors every comparison; "
        "baselines trail it, MinE closes the gap in a few sweeps"
    )


if __name__ == "__main__":
    main()
